"""Integration tests: cross-module behaviour on small end-to-end runs.

These assert the *directional* claims of the paper on miniature runs:
POM-TLB eliminates page walks, context switching raises TLB miss rates,
CSALT partitions react to traffic, and ASIDs isolate address spaces.
"""

import pytest

from repro.core.schemes import Scheme
from repro.mem.address import Asid
from repro.sim.config import small_config
from repro.sim.engine import run_simulation
from repro.sim.system import System
from repro.workloads.mixes import make_mix

RUN = dict(total_accesses=24_000, warmup_fraction=0.25)


def run(scheme, mix="gups", contexts=2, **overrides):
    # Short runs need a short quantum so several context switches land
    # inside the measured window (time_scale is the scaling knob).
    overrides.setdefault("time_scale", 1 / 512)
    config = small_config(
        scheme=scheme, cores=2, contexts_per_core=contexts, **overrides
    )
    return run_simulation(
        config, make_mix(mix, contexts=contexts, scale=0.25), **RUN
    )


class TestPaperDirections:
    def test_pom_eliminates_most_walks(self):
        conventional = run(Scheme.CONVENTIONAL)
        pom = run(Scheme.POM_TLB)
        assert pom.page_walks < conventional.page_walks
        assert pom.walks_eliminated_fraction > 0.5

    def test_context_switching_raises_tlb_mpki(self):
        switched = run(Scheme.CONVENTIONAL, contexts=2)
        alone = run(Scheme.CONVENTIONAL, contexts=1)
        assert switched.l2_tlb_mpki > alone.l2_tlb_mpki

    def test_virtualized_walks_cost_more(self):
        # ccomp's scattered strays force walks even in a single context.
        virtualized = run(Scheme.CONVENTIONAL, mix="ccomp", contexts=1)
        native = run(
            Scheme.CONVENTIONAL, mix="ccomp", contexts=1, virtualized=False
        )
        assert virtualized.page_walks > 0
        assert virtualized.walk_mean_cycles > native.walk_mean_cycles

    def test_caches_hold_tlb_entries_under_pom(self):
        pom = run(Scheme.POM_TLB, mix="ccomp")
        assert pom.mean_l3_tlb_occupancy > 0.02

    def test_csalt_partitions_move(self):
        result = run(Scheme.CSALT_CD, mix="ccomp")
        shares = {fraction for _, fraction in result.l3_partition_timeline}
        assert len(shares) >= 1
        assert all(0.0 < share < 1.0 for share in shares)

    def test_tsb_slower_than_pom(self):
        tsb = run(Scheme.TSB, mix="ccomp")
        pom = run(Scheme.POM_TLB, mix="ccomp")
        assert tsb.ipc <= pom.ipc * 1.05  # TSB never meaningfully wins


class TestAsidIsolation:
    def test_same_va_different_vm_translates_differently(self):
        config = small_config(scheme=Scheme.POM_TLB, cores=1,
                              contexts_per_core=2)
        system = System(config)
        va = 0x9000
        system.vms[0].ensure_mapped(0, va)
        system.vms[1].ensure_mapped(0, va)
        core = system.cores[0]
        _, entry0 = system.translate_beyond_l1(core, Asid(0, 0), va)
        _, entry1 = system.translate_beyond_l1(core, Asid(1, 0), va)
        assert entry0.frame_base != entry1.frame_base

    def test_tlb_entries_survive_context_switch(self):
        """ASID tagging: returning context finds its entries (no flush)."""
        config = small_config(scheme=Scheme.POM_TLB, cores=1,
                              contexts_per_core=2)
        system = System(config)
        system.vms[0].ensure_mapped(0, 0x9000)
        core = system.cores[0]
        system.translate_beyond_l1(core, Asid(0, 0), 0x9000)
        # "Run" the other VM briefly on this core.
        system.vms[1].ensure_mapped(0, 0x4000)
        system.translate_beyond_l1(core, Asid(1, 0), 0x4000)
        walks_before = core.stats.page_walks
        system.translate_beyond_l1(core, Asid(0, 0), 0x9000)
        assert core.stats.page_walks == walks_before


class TestSchemeEquivalences:
    def test_all_schemes_complete_and_account(self):
        for scheme in Scheme:
            result = run(scheme, mix="can_ccomp")
            assert result.instructions > 0, scheme
            assert result.ipc > 0, scheme

    def test_csalt_static_partitions_fixed(self):
        config = small_config(
            scheme=Scheme.CSALT_STATIC, cores=2, static_data_ways=3
        )
        system = System(config)
        assert system.l3.data_ways == 3
        assert system.cores[0].l2.data_ways == 3

    def test_replacement_policies_run_end_to_end(self):
        for replacement in ("lru", "nru", "plru"):
            result = run(
                Scheme.CSALT_CD, mix="gups", replacement=replacement,
                estimate_positions=(replacement != "lru"),
            )
            assert result.ipc > 0, replacement
