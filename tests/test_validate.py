"""Runtime invariant checking: the catalogue catches injected corruption,
clean systems pass, and the campaign pool treats violations as
non-retryable failures."""

import pytest

from repro.core.schemes import Scheme
from repro.experiments import runner
from repro.experiments.pool import run_campaign
from repro.sim.config import small_config
from repro.sim.engine import build_contexts, run_simulation
from repro.sim.scheduler import ContextScheduler
from repro.sim.system import System
from repro.validate import (
    InvariantChecker,
    InvariantViolation,
    check_cache,
    check_monotone,
    counter_snapshot,
)
from repro.workloads.mixes import make_mix


def exercised(replacement="lru", accesses=1_600):
    config = small_config(
        scheme=Scheme.CSALT_CD, cores=2, contexts_per_core=2,
        replacement=replacement,
    )
    system = System(config)
    per_core = build_contexts(
        system, make_mix("gups", config.num_vms, scale=0.25), seed=5
    )
    scheduler = ContextScheduler(per_core, config.switch_interval_cycles)
    executed = 0
    while executed < accesses:
        for core_id in range(config.cores):
            context = scheduler.current(core_id)
            for _ in range(4):
                va, is_write = next(context.stream)
                context.ensure_mapped(va)
                system.access(core_id, context.asid, va, is_write)
            scheduler.maybe_switch(core_id, system.cores[core_id].stats.cycles)
        executed += 4 * config.cores
    return config, system, scheduler


class TestCleanSystem:
    @pytest.mark.parametrize("replacement", ["lru", "nru", "plru", "rrip"])
    def test_exercised_system_passes(self, replacement):
        _, system, scheduler = exercised(replacement)
        checker = InvariantChecker(system, scheduler)
        checker.check(executed=1_600)  # must not raise
        assert checker.checks_run == 1
        assert checker.violations_found == 0

    def test_engine_run_with_checks_passes(self):
        config = small_config(
            scheme=Scheme.CSALT_CD, cores=2, contexts_per_core=2
        )
        result = run_simulation(
            config, make_mix("gups", config.num_vms, scale=0.25),
            total_accesses=4_000, seed=1, check_invariants=500,
        )
        assert result.instructions > 0


class TestInjectedCorruption:
    def test_duplicated_lru_way_caught(self):
        _, system, scheduler = exercised("lru")
        cache = system.cores[0].l2
        cache._recency[0][0] = cache._recency[0][1]  # duplicate a way
        checker = InvariantChecker(system, scheduler)
        with pytest.raises(InvariantViolation) as info:
            checker.check(executed=1_600)
        violation = info.value
        assert violation.component == "cache:l2-core0"
        assert violation.invariant == "lru-permutation"
        assert violation.context["executed"] == 1_600

    def test_partition_sum_mismatch_caught(self):
        _, system, _ = exercised("lru")
        # Bypass set_partition: tamper with the split directly, as a bug
        # in Algorithm 1's way assignment would.
        system.l3._data_ways = 0
        found = list(check_cache(system.l3))
        assert any(v.invariant.startswith("partition") for v in found)

    def test_tag_index_mismatch_caught(self):
        _, system, _ = exercised("lru")
        cache = system.l3
        set_index = next(
            i for i in range(cache.num_sets) if cache._tag_to_way[i]
        )
        tag = next(iter(cache._tag_to_way[set_index]))
        cache._tag_to_way[set_index][tag] = (
            (cache._tag_to_way[set_index][tag] + 1) % cache.ways
        )
        found = list(check_cache(cache))
        assert any(v.invariant == "tag-index-mismatch" for v in found)

    def test_counter_regression_caught(self):
        _, system, _ = exercised("lru")
        baseline = counter_snapshot(system)
        system.cores[0].l2.stats.hits = 0  # counters never go backwards
        system.cores[0].l2.stats.data_hits = 0
        system.cores[0].l2.stats.tlb_hits = 0
        found = list(check_monotone(baseline, counter_snapshot(system)))
        assert found and found[0].invariant == "monotonicity"

    def test_sweep_collects_multiple(self):
        _, system, scheduler = exercised("lru")
        system.cores[0].l2._recency[0][0] = system.cores[0].l2._recency[0][1]
        system.l3._data_ways = 0
        checker = InvariantChecker(system, scheduler)
        with pytest.raises(InvariantViolation) as info:
            checker.check()
        assert info.value.others  # the rest of the sweep rides along


class TestEngineIntegration:
    @staticmethod
    def _skew_stats(system):
        # A miscounted hit split survives normal traffic (all counters
        # keep incrementing in step) without crashing the datapath the
        # way recency corruption would, so the first audit must see it.
        system.cores[0].l2.stats.data_hits += 1

    def test_corruption_surfaces_through_run_simulation(self):
        config = small_config(
            scheme=Scheme.CSALT_CD, cores=2, contexts_per_core=2
        )
        with pytest.raises(InvariantViolation) as info:
            run_simulation(
                config, make_mix("gups", config.num_vms, scale=0.25),
                total_accesses=4_000, seed=1, check_invariants=500,
                system_setup=self._skew_stats,
            )
        assert info.value.invariant == "stats-split"
        assert info.value.component == "cache:l2-core0"

    def test_config_field_fallback(self):
        config = small_config(
            scheme=Scheme.CSALT_CD, cores=2, contexts_per_core=2,
            check_invariants=500,
        )
        with pytest.raises(InvariantViolation):
            run_simulation(
                config, make_mix("gups", config.num_vms, scale=0.25),
                total_accesses=4_000, seed=1,
                system_setup=self._skew_stats,
            )


class TestPoolClassification:
    @pytest.fixture(autouse=True)
    def fresh_runner(self):
        runner.clear_cache()
        runner.set_store(None)
        yield
        runner.clear_cache()
        runner.set_store(None)

    def test_violation_is_non_retryable(self, monkeypatch):
        def poisoned_run_point(**kwargs):
            raise InvariantViolation(
                "cache:l2-core0", "lru-permutation", "way 3 duplicated"
            )

        monkeypatch.setattr(runner, "run_point", poisoned_run_point)
        signature = runner.point_signature(
            "gups", Scheme.POM_TLB, total_accesses=1_500
        )
        summary = run_campaign([signature], jobs=2, retries=2)
        assert len(summary.failures) == 1
        failure = summary.failures[0]
        # Deterministic in-simulation failure: no retry burned.
        assert failure.attempts == 1
        assert "InvariantViolation" in failure.error
        assert "lru-permutation" in failure.error
