"""Unit and property tests for replacement policies."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.replacement import NRU, TreePLRU, TrueLRU, make_policy


class TestMakePolicy:
    def test_names(self):
        assert isinstance(make_policy("lru", 4), TrueLRU)
        assert isinstance(make_policy("NRU", 4), NRU)
        assert isinstance(make_policy("plru", 4), TreePLRU)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_policy("belady", 4)

    def test_bad_ways(self):
        with pytest.raises(ValueError):
            TrueLRU(0)


class TestTrueLRU:
    def test_initial_order(self):
        policy = TrueLRU(4)
        state = policy.new_set_state()
        assert policy.victim(state, range(4)) == 3

    def test_touch_moves_to_mru(self):
        policy = TrueLRU(4)
        state = policy.new_set_state()
        policy.touch(state, 3)
        assert policy.stack_position(state, 3) == 0
        assert policy.victim(state, range(4)) == 2

    def test_victim_respects_candidates(self):
        policy = TrueLRU(4)
        state = policy.new_set_state()
        # LRU order is 3 > 2 > 1 > 0; restricted to {0, 1} the victim is 1.
        assert policy.victim(state, range(2)) == 1

    def test_victim_empty_partition(self):
        policy = TrueLRU(4)
        state = policy.new_set_state()
        with pytest.raises(ValueError):
            policy.victim(state, range(0))

    def test_insert_at_lru(self):
        policy = TrueLRU(4)
        state = policy.new_set_state()
        policy.insert(state, 0, at_mru=False)
        assert policy.victim(state, range(4)) == 0

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=64))
    def test_stack_position_matches_reference(self, touches):
        """Stack position must equal the reference recency list's index."""
        policy = TrueLRU(8)
        state = policy.new_set_state()
        reference = list(range(8))
        for way in touches:
            policy.touch(state, way)
            reference.remove(way)
            reference.insert(0, way)
        for way in range(8):
            assert policy.stack_position(state, way) == reference.index(way)

    @given(st.lists(st.integers(min_value=0, max_value=7), max_size=64))
    def test_positions_are_a_permutation(self, touches):
        policy = TrueLRU(8)
        state = policy.new_set_state()
        for way in touches:
            policy.touch(state, way)
        positions = sorted(policy.stack_position(state, w) for w in range(8))
        assert positions == list(range(8))


class TestNRU:
    def test_touch_sets_bit(self):
        policy = NRU(4)
        state = policy.new_set_state()
        policy.touch(state, 2)
        assert state[2] is True

    def test_all_set_resets_others(self):
        policy = NRU(4)
        state = policy.new_set_state()
        for way in range(4):
            policy.touch(state, way)
        # Last touch (way 3) keeps its bit; the others were reset.
        assert state == [False, False, False, True]

    def test_victim_prefers_clear_bit(self):
        policy = NRU(4)
        state = policy.new_set_state()
        policy.touch(state, 0)
        assert policy.victim(state, range(4)) == 1

    def test_victim_resets_when_all_referenced(self):
        policy = NRU(2)
        state = [True, True]
        victim = policy.victim(state, range(2))
        assert victim == 0
        assert state == [False, False]

    def test_victim_scoped_to_partition(self):
        policy = NRU(4)
        state = [True, True, False, True]
        # Partition {0, 1}: both referenced, reset only inside partition.
        assert policy.victim(state, range(2)) == 0
        assert state[3] is True

    def test_stack_positions_in_range(self):
        policy = NRU(8)
        state = policy.new_set_state()
        for way in (0, 3, 5):
            policy.touch(state, way)
        for way in range(8):
            assert 0 <= policy.stack_position(state, way) < 8

    def test_referenced_estimated_younger(self):
        policy = NRU(8)
        state = policy.new_set_state()
        policy.touch(state, 1)
        assert policy.stack_position(state, 1) < policy.stack_position(state, 2)


class TestTreePLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            TreePLRU(6)

    def test_touch_protects_way(self):
        policy = TreePLRU(4)
        state = policy.new_set_state()
        policy.touch(state, 2)
        assert policy.victim(state, range(4)) != 2

    def test_round_robin_fill(self):
        """Touching every way in order leaves the first the oldest."""
        policy = TreePLRU(8)
        state = policy.new_set_state()
        for way in range(8):
            policy.touch(state, way)
        assert policy.stack_position(state, 7) == 0

    def test_stack_positions_in_range(self):
        policy = TreePLRU(16)
        state = policy.new_set_state()
        for way in (0, 5, 9, 14):
            policy.touch(state, way)
        for way in range(16):
            assert 0 <= policy.stack_position(state, way) < 16

    def test_most_recent_is_mru(self):
        policy = TreePLRU(8)
        state = policy.new_set_state()
        policy.touch(state, 5)
        assert policy.stack_position(state, 5) == 0

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=64))
    def test_victim_never_most_recent(self, touches):
        policy = TreePLRU(8)
        state = policy.new_set_state()
        for way in touches:
            policy.touch(state, way)
        assert policy.victim(state, range(8)) != touches[-1]

    @given(st.lists(st.integers(min_value=0, max_value=7), max_size=64))
    def test_victim_in_candidates(self, touches):
        policy = TreePLRU(8)
        state = policy.new_set_state()
        for way in touches:
            policy.touch(state, way)
        assert policy.victim(state, range(2, 6)) in range(2, 6)


class TestRrip:
    def _policy(self):
        from repro.mem.replacement import Rrip
        return Rrip(4)

    def test_make_policy_name(self):
        from repro.mem.replacement import Rrip
        assert isinstance(make_policy("rrip", 4), Rrip)

    def test_initial_state_all_distant(self):
        policy = self._policy()
        assert policy.new_set_state() == [3, 3, 3, 3]

    def test_hit_promotes_to_zero(self):
        policy = self._policy()
        state = policy.new_set_state()
        policy.touch(state, 2)
        assert state[2] == 0

    def test_insert_long_interval(self):
        policy = self._policy()
        state = policy.new_set_state()
        policy.insert(state, 1, at_mru=True)
        assert state[1] == 2
        policy.insert(state, 2, at_mru=False)
        assert state[2] == 3

    def test_victim_prefers_distant(self):
        policy = self._policy()
        state = [0, 3, 2, 1]
        assert policy.victim(state, range(4)) == 1

    def test_victim_ages_when_none_distant(self):
        policy = self._policy()
        state = [0, 1, 2, 2]
        victim = policy.victim(state, range(4))
        assert victim in (2, 3)
        assert state[0] >= 1  # candidates aged

    def test_victim_scoped_to_partition(self):
        policy = self._policy()
        state = [0, 0, 0, 3]
        # Partition {0, 1}: way 3 is distant but out of bounds.
        victim = policy.victim(state, range(2))
        assert victim in (0, 1)

    def test_stack_positions_ordered_by_rrpv(self):
        policy = self._policy()
        state = [0, 3, 2, 1]
        positions = [policy.stack_position(state, w) for w in range(4)]
        assert positions[0] < positions[3] < positions[2] < positions[1]

    def test_stack_positions_in_range(self):
        policy = self._policy()
        state = [2, 2, 2, 2]
        for way in range(4):
            assert 0 <= policy.stack_position(state, way) < 4
