"""Unit tests for the DRAM timing model."""

import pytest

from repro.mem.dram import DDR4_2133, DIE_STACKED, DramChannel, DramTiming


class TestTiming:
    def test_device_to_cpu_rounds_up(self):
        timing = DramTiming("t", 1000.0, 8, 2048, 10, 10, 10, 4)
        assert timing.device_to_cpu(1) == 4
        assert timing.device_to_cpu(1.1) == 5

    def test_burst_cycles(self):
        assert DDR4_2133.burst_cycles == pytest.approx(4.0)
        assert DIE_STACKED.burst_cycles == pytest.approx(2.0)

    def test_die_stacked_faster_than_ddr(self):
        die = DramChannel(DIE_STACKED)
        ddr = DramChannel(DDR4_2133)
        assert die.average_latency() < ddr.average_latency()


class TestChannel:
    def test_first_access_is_row_miss(self):
        channel = DramChannel(DDR4_2133)
        channel.access(0)
        assert channel.stats.row_misses == 1
        assert channel.stats.row_hits == 0

    def test_same_row_hits(self):
        channel = DramChannel(DDR4_2133)
        first = channel.access(0)
        second = channel.access(64)
        assert second < first
        assert channel.stats.row_hits == 1

    def test_row_conflict_costs_precharge(self):
        channel = DramChannel(DDR4_2133)
        banks = DDR4_2133.banks
        channel.access(0)
        cold = channel.access(2048)  # different bank, no open row
        conflict = channel.access(2048 * banks)  # same bank as row 0, conflict
        assert conflict > cold

    def test_distinct_banks_independent(self):
        channel = DramChannel(DDR4_2133)
        channel.access(0)
        channel.access(2048)
        channel.access(0)
        assert channel.stats.row_hits == 1

    def test_average_latency_between_hit_and_miss(self):
        channel = DramChannel(DDR4_2133)
        t = DDR4_2133
        hit = t.device_to_cpu(t.t_cas + t.burst_cycles)
        miss = t.device_to_cpu(t.t_rp + t.t_rcd + t.t_cas + t.burst_cycles)
        assert hit <= channel.average_latency() <= miss

    def test_reset_stats_keeps_rows_open(self):
        channel = DramChannel(DDR4_2133)
        channel.access(0)
        channel.reset_stats()
        channel.access(64)
        assert channel.stats.row_hits == 1

    def test_full_reset_closes_rows(self):
        channel = DramChannel(DDR4_2133)
        channel.access(0)
        channel.reset()
        channel.access(64)
        assert channel.stats.row_misses == 1

    def test_row_hit_rate(self):
        channel = DramChannel(DDR4_2133)
        assert channel.stats.row_hit_rate == 0.0
        channel.access(0)
        channel.access(64)
        assert channel.stats.row_hit_rate == pytest.approx(0.5)
