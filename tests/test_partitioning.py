"""Unit and property tests for CSALT partitioning (Algorithms 1-3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partitioning import (
    N_MIN,
    PartitionController,
    best_partition,
    marginal_utility,
    unit_weights,
)
from repro.mem.cache import Cache, LineKind


class TestMarginalUtility:
    def test_paper_figure5_style_example(self):
        """8-way cache, the Figure 5 LRU stacks, Eq. 1 arithmetic."""
        data = [3, 11, 12, 8, 9, 2, 1, 4, 10]
        tlb = [7, 10, 12, 5, 1, 0, 8, 15, 1]
        # MU(N) = sum(data[:N]) + sum(tlb[:8-N])
        assert marginal_utility(data, tlb, 4, 8) == 34 + 34
        assert marginal_utility(data, tlb, 5, 8) == 43 + 29
        assert marginal_utility(data, tlb, 6, 8) == 45 + 17
        assert marginal_utility(data, tlb, 7, 8) == 46 + 7

    def test_weights_scale_streams(self):
        data = [10, 0, 0]
        tlb = [4, 0, 0]
        unweighted = marginal_utility(data, tlb, 1, 2)
        weighted = marginal_utility(data, tlb, 1, 2, weight_data=1.0, weight_tlb=5.0)
        assert unweighted == 14
        assert weighted == 30

    def test_bounds_enforced(self):
        data = [1] * 5
        tlb = [1] * 5
        with pytest.raises(ValueError):
            marginal_utility(data, tlb, 0, 4)
        with pytest.raises(ValueError):
            marginal_utility(data, tlb, 4, 4)


counters = st.lists(
    st.integers(min_value=0, max_value=1000), min_size=9, max_size=9
)
weights = st.floats(min_value=0.5, max_value=20.0)


class TestBestPartition:
    def test_data_heavy_stream_wins_ways(self):
        data = [100, 90, 80, 70, 60, 50, 40, 30, 0]
        tlb = [5, 0, 0, 0, 0, 0, 0, 0, 100]
        assert best_partition(data, tlb, 8) == 7

    def test_tlb_heavy_stream_wins_ways(self):
        data = [5, 0, 0, 0, 0, 0, 0, 0, 100]
        tlb = [100, 90, 80, 70, 60, 50, 40, 30, 0]
        assert best_partition(data, tlb, 8) == 1

    def test_all_zero_ties_to_middle(self):
        assert best_partition([0] * 9, [0] * 9, 8) == 4

    def test_criticality_weight_flips_decision(self):
        # Both streams gain from every additional way; data gains a bit
        # more per way, so unweighted the data stream wins -- but a 10x
        # TLB criticality weight must flip the allocation.
        data = [10] * 8 + [0]
        tlb = [9] * 8 + [0]
        assert best_partition(data, tlb, 8, weight_tlb=1.0) == 8 - N_MIN
        assert best_partition(data, tlb, 8, weight_tlb=10.0) == N_MIN

    @given(counters, counters)
    @settings(max_examples=100)
    def test_matches_bruteforce_argmax(self, data, tlb):
        chosen = best_partition(data, tlb, 8)
        best_value = max(
            marginal_utility(data, tlb, n, 8) for n in range(1, 8)
        )
        assert marginal_utility(data, tlb, chosen, 8) == best_value

    @given(counters, counters, weights, weights)
    @settings(max_examples=100)
    def test_weighted_argmax_and_range(self, data, tlb, w_data, w_tlb):
        chosen = best_partition(data, tlb, 8, w_data, w_tlb)
        assert N_MIN <= chosen <= 8 - N_MIN
        best_value = max(
            marginal_utility(data, tlb, n, 8, w_data, w_tlb)
            for n in range(1, 8)
        )
        assert marginal_utility(data, tlb, chosen, 8, w_data, w_tlb) == (
            pytest.approx(best_value)
        )


def make_cache(ways=4, sets=8):
    return Cache("ctl-test", 64 * ways * sets, ways, latency=10)


class TestPartitionController:
    def test_initial_partition_is_half(self):
        cache = make_cache(ways=4)
        controller = PartitionController(cache, epoch_accesses=100)
        assert cache.data_ways == 2
        assert controller.timeline[0].data_ways == 2

    def test_epoch_must_be_positive(self):
        with pytest.raises(ValueError):
            PartitionController(make_cache(), epoch_accesses=0)

    def test_repartition_fires_at_epoch(self):
        cache = make_cache()
        controller = PartitionController(
            cache, epoch_accesses=10, sample_shift=0
        )
        for i in range(10):
            controller.observe(LineKind.DATA, 0, i % 2, hit=False)
        assert len(controller.timeline) == 2

    def test_tlb_reuse_wins_ways(self):
        cache = make_cache(ways=4)
        controller = PartitionController(
            cache, epoch_accesses=200, sample_shift=0
        )
        # TLB stream with strong reuse; data stream pure misses.
        for i in range(100):
            controller.observe(LineKind.TLB, 0, i % 3, hit=True)
            controller.observe(LineKind.DATA, 0, 1000 + i, hit=False)
        # TLB hits span stack positions 0-2, data contributes nothing:
        # the TLB side must hold at least its useful three ways.
        assert cache.data_ways == 1

    def test_weight_provider_called(self):
        calls = []

        def provider():
            calls.append(1)
            return 1.0, 1.0

        controller = PartitionController(
            make_cache(), epoch_accesses=5, weight_provider=provider,
            sample_shift=0,
        )
        for i in range(5):
            controller.observe(LineKind.DATA, 0, i, hit=False)
        assert calls

    def test_estimate_mode_uses_cache_positions(self):
        cache = make_cache(ways=4)
        controller = PartitionController(
            cache, epoch_accesses=1000, estimate_positions=True
        )
        cache.fill(0x0, LineKind.TLB)
        hit = cache.lookup(0x0, LineKind.TLB)
        controller.observe(LineKind.TLB, 0, 0, hit=hit)
        assert controller.profilers.tlb.counters[0] == 1

    def test_timeline_fractions(self):
        controller = PartitionController(make_cache(ways=4), epoch_accesses=10)
        series = controller.tlb_fraction_timeline()
        assert series == [(0, 0.5)]

    def test_decay_applied_each_epoch(self):
        cache = make_cache()
        controller = PartitionController(
            cache, epoch_accesses=4, sample_shift=0
        )
        for i in range(4):
            controller.observe(LineKind.DATA, 0, 99, hit=(i > 0))
        total_after = controller.profilers.data.total_accesses
        assert total_after < 4

    def test_unit_weights(self):
        assert unit_weights() == (1.0, 1.0)


class TestLookaheadPartition:
    def test_matches_argmax_on_convex_curves(self):
        from repro.core.partitioning import lookahead_partition
        data = [50, 30, 20, 10, 5, 2, 1, 0, 100]
        tlb = [40, 35, 5, 0, 0, 0, 0, 0, 60]
        assert lookahead_partition(data, tlb, 8) == best_partition(data, tlb, 8)

    def test_idle_streams_split_evenly(self):
        from repro.core.partitioning import lookahead_partition
        assert lookahead_partition([0] * 9, [0] * 9, 8) == 4

    def test_dominant_stream_takes_most_ways(self):
        from repro.core.partitioning import lookahead_partition
        data = [10] * 8 + [0]
        tlb = [0] * 9
        assert lookahead_partition(data, tlb, 8) == 7

    def test_weights_respected(self):
        from repro.core.partitioning import lookahead_partition
        data = [10] * 8 + [0]
        tlb = [9] * 8 + [0]
        assert lookahead_partition(data, tlb, 8, weight_tlb=10.0) == N_MIN

    @given(counters, counters)
    @settings(max_examples=100)
    def test_allocation_in_range_and_near_optimal(self, data, tlb):
        from repro.core.partitioning import lookahead_partition
        chosen = lookahead_partition(data, tlb, 8)
        assert N_MIN <= chosen <= 8 - N_MIN
        best = max(marginal_utility(data, tlb, n, 8) for n in range(1, 8))
        achieved = marginal_utility(data, tlb, chosen, 8)
        # The greedy lookahead is allowed to be suboptimal, but never
        # worse than half the optimum on these monotone curves.
        assert achieved >= best / 2
