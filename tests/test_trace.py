"""Unit tests for trace recording and replay."""

import itertools

import numpy as np
import pytest

from repro.workloads.programs import Gups, StreamCluster
from repro.workloads.trace import (
    TraceWorkload,
    load_trace,
    record_trace,
    trace_info,
)


def take(stream, count):
    return list(itertools.islice(stream, count))


@pytest.fixture
def gups_trace(tmp_path):
    path = tmp_path / "gups.npz"
    record_trace(Gups(table_bytes=1 << 22), path,
                 accesses_per_thread=500, seed=3)
    return path


class TestRecord:
    def test_roundtrip_matches_source(self, gups_trace):
        workload = Gups(table_bytes=1 << 22)
        original = take(workload.thread_stream(0, 8, seed=3), 500)
        replay = take(TraceWorkload(gups_trace).thread_stream(0), 500)
        assert replay == original

    def test_all_threads_recorded(self, gups_trace):
        data = load_trace(gups_trace)
        assert int(data["num_threads"][0]) == 8
        for thread in range(8):
            assert len(data[f"thread{thread}_addresses"]) == 500

    def test_write_flags_preserved(self, gups_trace):
        replay = take(TraceWorkload(gups_trace).thread_stream(0), 100)
        # gups alternates read/write to the same slot.
        assert [w for _, w in replay[:4]] == [False, True, False, True]

    def test_huge_limit_preserved(self, gups_trace):
        assert TraceWorkload(gups_trace).huge_va_limit == 1 << 22

    def test_positive_access_count_required(self, tmp_path):
        with pytest.raises(ValueError):
            record_trace(Gups(1 << 22), tmp_path / "x.npz",
                         accesses_per_thread=0)


class TestReplay:
    def test_loops_past_end(self, gups_trace):
        replay = take(TraceWorkload(gups_trace).thread_stream(0), 1200)
        assert replay[:500] == replay[500:1000]

    def test_seed_rotates_phase(self, gups_trace):
        workload = TraceWorkload(gups_trace)
        a = take(workload.thread_stream(0, 8, seed=0), 50)
        b = take(workload.thread_stream(0, 8, seed=1), 50)
        assert a != b

    def test_thread_ids_wrap(self, gups_trace):
        workload = TraceWorkload(gups_trace)
        assert take(workload.thread_stream(8), 10) == take(
            workload.thread_stream(0), 10
        )

    def test_custom_name(self, gups_trace):
        assert TraceWorkload(gups_trace, name="mytrace").name == "mytrace"
        assert TraceWorkload(gups_trace).name == "gups"


class TestInfo:
    def test_info_fields(self, gups_trace):
        info = trace_info(gups_trace)
        assert info.num_threads == 8
        assert info.accesses_per_thread == 500
        assert info.distinct_pages > 0

    def test_version_check(self, tmp_path):
        bad = tmp_path / "bad.npz"
        np.savez(bad, version=np.array([99]))
        with pytest.raises(ValueError, match="version"):
            load_trace(bad)


class TestSimulationWithTrace:
    def test_trace_drives_simulator(self, tmp_path):
        from repro.core.schemes import Scheme
        from repro.sim.config import small_config
        from repro.sim.engine import run_simulation

        path = tmp_path / "stream.npz"
        record_trace(StreamCluster.scaled(0.25), path,
                     accesses_per_thread=800)
        workload = TraceWorkload(path)
        config = small_config(scheme=Scheme.POM_TLB, cores=2)
        result = run_simulation(
            config, [workload, TraceWorkload(path)],
            total_accesses=2_000, warmup_fraction=0.0,
        )
        assert result.instructions > 0
        assert result.ipc > 0
