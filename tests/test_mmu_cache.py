"""Unit tests for the paging-structure caches and nested TLB."""

import pytest

from repro.mem.address import Asid
from repro.vm.mmu_cache import (
    NestedTlb,
    PagingStructureCache,
    PscConfig,
    SmallFullyAssocCache,
)

ASID = Asid(0, 0)
OTHER = Asid(1, 0)


class TestSmallCache:
    def test_lru_eviction(self):
        cache = SmallFullyAssocCache(entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1

    def test_hit_rate(self):
        cache = SmallFullyAssocCache(entries=4)
        cache.put("x", 1)
        cache.get("x")
        cache.get("y")
        assert cache.hit_rate == pytest.approx(0.5)

    def test_put_updates_existing(self):
        cache = SmallFullyAssocCache(entries=1)
        cache.put("x", 1)
        cache.put("x", 2)
        assert cache.get("x") == 2

    def test_entries_positive(self):
        with pytest.raises(ValueError):
            SmallFullyAssocCache(entries=0)


class TestPsc:
    def test_cold_probe_misses(self):
        assert PagingStructureCache().probe(ASID, 0x1000) is None

    def test_leaf_walk_installs_all_levels(self):
        psc = PagingStructureCache()
        psc.install(ASID, 0x1000, deepest_level=1)
        hit = psc.probe(ASID, 0x1000)
        assert hit is not None
        assert hit.start_level == 1

    def test_huge_walk_installs_upper_levels_only(self):
        psc = PagingStructureCache()
        psc.install(ASID, 0x1000, deepest_level=2)
        hit = psc.probe(ASID, 0x1000)
        assert hit.start_level == 2

    def test_pde_reach_is_2mb(self):
        psc = PagingStructureCache()
        psc.install(ASID, 0x0, deepest_level=1)
        assert psc.probe(ASID, 0x1F_FFFF).start_level == 1
        # Past the 2 MB boundary the PDE entry no longer applies, but the
        # PDP entry (1 GB reach) still does.
        assert psc.probe(ASID, 0x20_0000).start_level == 2

    def test_asid_isolation(self):
        psc = PagingStructureCache()
        psc.install(ASID, 0x1000, deepest_level=1)
        assert psc.probe(OTHER, 0x1000) is None

    def test_capacity_eviction(self):
        psc = PagingStructureCache(PscConfig(pde_entries=2))
        for i in range(3):
            psc.install(ASID, i << 21, deepest_level=1)
        # The first PDE entry was evicted (2-entry cache, 3 inserts)...
        hit = psc.probe(ASID, 0x0)
        # ...but its PDP/PML4 prefixes still hit.
        assert hit is not None
        assert hit.start_level == 2

    def test_invalidate_all(self):
        psc = PagingStructureCache()
        psc.install(ASID, 0x1000, deepest_level=1)
        psc.invalidate_all()
        assert psc.probe(ASID, 0x1000) is None

    def test_probe_latency_from_config(self):
        psc = PagingStructureCache(PscConfig(latency=7))
        psc.install(ASID, 0x1000, deepest_level=1)
        assert psc.probe(ASID, 0x1000).latency == 7


class TestNestedTlb:
    def test_roundtrip(self):
        nested = NestedTlb(entries=4)
        nested.put(0, 100, 555)
        assert nested.get(0, 100) == 555

    def test_vm_isolation(self):
        nested = NestedTlb(entries=4)
        nested.put(0, 100, 555)
        assert nested.get(1, 100) is None

    def test_lru(self):
        nested = NestedTlb(entries=2)
        nested.put(0, 1, 11)
        nested.put(0, 2, 22)
        nested.get(0, 1)
        nested.put(0, 3, 33)
        assert nested.get(0, 2) is None
        assert nested.get(0, 1) == 11
