"""Cycle accounting: the per-component ledger and its sum invariant.

The tentpole guarantee under test: for every scheme x replacement
combination, the per-component cycle attributions sum **bit-exactly**
(``==``, no tolerance) to each core's cycle counter.
"""

import pytest

from repro.core.schemes import Scheme
from repro.mem.address import Asid
from repro.sim.config import small_config
from repro.sim.engine import run_simulation
from repro.sim.stats import SimulationResult
from repro.sim.system import System
from repro.telemetry import CycleAccountant, Telemetry
from repro.telemetry.accounting import (
    CYCLE_QUANTUM,
    CpiStack,
    component_sort_key,
    merge_components,
    quantize_cycles,
)
from repro.validate import InvariantChecker
from repro.workloads.mixes import make_mix


def run_with_accounting(scheme, replacement="lru", accesses=3000,
                        mix="gups", **overrides):
    telemetry = Telemetry(accounting=CycleAccountant())
    config = small_config(scheme=scheme, replacement=replacement, **overrides)
    result = run_simulation(
        config, make_mix(mix), total_accesses=accesses,
        workload_name=mix, telemetry=telemetry,
    )
    return result, telemetry


class TestQuantization:
    def test_quantum_is_dyadic(self):
        assert CYCLE_QUANTUM == 2.0 ** -10

    def test_quantize_exact_on_integers(self):
        for value in (0, 1, 7, 1000):
            assert quantize_cycles(value) == value

    def test_quantize_rounds_to_grid(self):
        value = quantize_cycles(0.65 * 3)
        assert value * 1024 == round(value * 1024)
        assert abs(value - 1.95) < CYCLE_QUANTUM

    def test_sum_of_quanta_is_exact(self):
        # The rationale for the whole scheme: dyadic increments
        # accumulate without rounding error in any order.
        increment = quantize_cycles(1.95)
        total = 0.0
        for _ in range(10_000):
            total += increment
        assert total == increment * 10_000


class TestSumInvariantMatrix:
    """Acceptance criterion: exact attribution across the full matrix."""

    @pytest.mark.parametrize("replacement", ["lru", "nru", "plru"])
    @pytest.mark.parametrize("scheme", [
        Scheme.CONVENTIONAL,
        Scheme.POM_TLB,
        Scheme.CSALT_D,
        Scheme.CSALT_CD,
    ])
    def test_components_sum_exactly_to_cycles(self, scheme, replacement):
        result, _ = run_with_accounting(scheme, replacement)
        stack = result.cpi_stack
        assert stack is not None
        # Whole-run total, bit-exact.
        total_cycles = sum(core.cycles for core in result.per_core)
        assert stack.total_cycles == total_cycles
        assert sum(stack.components.values()) == total_cycles
        # Per core, bit-exact.
        assert len(stack.per_core) == len(result.per_core)
        for core_stack, core in zip(stack.per_core, result.per_core):
            assert sum(core_stack.values()) == core.cycles
        # Residual bucket stays empty: every cycle has a real name.
        assert stack.components.get("translation.other", 0.0) == 0.0

    def test_tsb_scheme_sums_exactly(self):
        result, _ = run_with_accounting(Scheme.TSB)
        stack = result.cpi_stack
        assert sum(stack.components.values()) == sum(
            core.cycles for core in result.per_core
        )
        assert any(name.startswith("tsb.") for name in stack.components)

    def test_virtualized_walks_attributed(self):
        result, _ = run_with_accounting(Scheme.CONVENTIONAL)
        names = set(result.cpi_stack.components)
        assert any(name.startswith("walk.nested") for name in names)
        assert "base" in names

    def test_per_vm_totals_match_grand_total(self):
        # A tiny switch quantum forces both VM contexts to run.
        result, _ = run_with_accounting(
            Scheme.CSALT_CD, switch_interval_ms=0.05
        )
        stack = result.cpi_stack
        per_vm_total = sum(
            sum(vm_stack.values()) for vm_stack in stack.per_vm.values()
        )
        assert per_vm_total == stack.total_cycles
        assert len(stack.per_vm) >= 2  # both contexts charged

    def test_shootdowns_attributed(self):
        # Longer run with context switching exercises the shootdown path.
        result, _ = run_with_accounting(
            Scheme.CSALT_CD, accesses=6000, mix="can_ccomp",
            switch_interval_ms=0.05,
        )
        stack = result.cpi_stack
        assert sum(stack.components.values()) == stack.total_cycles
        assert stack.total_cycles == sum(
            core.cycles for core in result.per_core
        )


def drive(system, accesses=400, core_id=0, vm_id=0):
    """Deterministic access pattern touching enough pages to miss TLBs."""
    asid = Asid(vm_id, 0)
    for index in range(accesses):
        address = 0x1000 * (index % 60) + (index * 64) % 4096
        system.vms[vm_id].ensure_mapped(0, address)
        system.access(core_id, asid, address, is_write=(index % 7 == 0))


class TestValidatorIntegration:
    def make_system(self):
        telemetry = Telemetry(accounting=CycleAccountant())
        system = System(small_config(scheme=Scheme.CSALT_CD),
                        telemetry=telemetry)
        drive(system)
        return system

    def test_sweep_clean_on_live_system(self):
        system = self.make_system()
        assert InvariantChecker(system).sweep() == []

    def test_sweep_catches_tampered_ledger(self):
        system = self.make_system()
        stacks = system.accounting._stacks
        key = next(iter(stacks))
        component = next(iter(stacks[key]))
        stacks[key][component] += 123.0
        violations = InvariantChecker(system).sweep()
        assert any(v.component.startswith("accounting:") for v in violations)

    def test_unsynced_accountant_is_skipped(self):
        system = self.make_system()
        stacks = system.accounting._stacks
        key = next(iter(stacks))
        component = next(iter(stacks[key]))
        stacks[key][component] += 123.0
        system.accounting.mark_unsynced()
        assert not any(
            v.component.startswith("accounting:")
            for v in InvariantChecker(system).sweep()
        )

    def test_no_accounting_no_check(self):
        system = System(small_config(scheme=Scheme.POM_TLB))
        assert system.accounting is None
        assert InvariantChecker(system).sweep() == []


class TestCheckpointRestore:
    def test_state_round_trips_through_snapshot(self):
        telemetry = Telemetry(accounting=CycleAccountant())
        system = System(small_config(scheme=Scheme.POM_TLB),
                        telemetry=telemetry)
        drive(system, accesses=300)
        state = system.state_dict()
        before = dict(system.accounting.component_totals())

        # Restore into a *fresh* system sharing the telemetry bundle
        # (the engine restores in place; this is the stronger variant).
        fresh = System(small_config(scheme=Scheme.POM_TLB),
                       telemetry=telemetry)
        fresh.load_state(state)
        assert fresh.accounting.synced
        assert fresh.accounting.component_totals() == before
        assert InvariantChecker(fresh).sweep() == []

    def test_legacy_snapshot_marks_unsynced(self):
        telemetry = Telemetry(accounting=CycleAccountant())
        system = System(small_config(scheme=Scheme.POM_TLB),
                        telemetry=telemetry)
        drive(system, accesses=100)
        state = system.state_dict()
        state.pop("accounting")  # pre-accounting snapshot
        system.load_state(state)
        assert not system.accounting.synced
        assert system.result().cpi_stack is None

    def test_engine_checkpoint_restore_keeps_ledger_exact(self, tmp_path):
        config = small_config(scheme=Scheme.CSALT_CD)
        workloads = make_mix("gups")
        telemetry = Telemetry(accounting=CycleAccountant())
        full = run_simulation(config, workloads, total_accesses=2400,
                              seed=5, telemetry=telemetry)
        # Interrupted variant: checkpoint, then resume from disk.
        telemetry2 = Telemetry(accounting=CycleAccountant())
        run_simulation(config, make_mix("gups"), total_accesses=2400,
                       seed=5, telemetry=telemetry2,
                       checkpoint_every=800, checkpoint_dir=tmp_path)
        telemetry3 = Telemetry(accounting=CycleAccountant())
        resumed = run_simulation(config, make_mix("gups"),
                                 total_accesses=2400, seed=5,
                                 telemetry=telemetry3,
                                 checkpoint_dir=tmp_path, restore="auto")
        assert resumed.cpi_stack is not None
        assert resumed.cpi_stack.components == full.cpi_stack.components
        assert sum(resumed.cpi_stack.components.values()) == sum(
            core.cycles for core in resumed.per_core
        )


class TestCpiStack:
    def stack(self):
        return CpiStack(
            scheme="csalt-cd",
            instructions=1000,
            total_cycles=2600.0,
            components={"base": 650.0, "data.dram": 1800.0,
                        "pom.l3": 150.0},
            per_core=[{"base": 650.0, "data.dram": 1800.0, "pom.l3": 150.0}],
            per_vm={"0": {"base": 650.0, "data.dram": 1800.0,
                          "pom.l3": 150.0}},
        )

    def test_cpi_math(self):
        stack = self.stack()
        assert stack.cpi_total == 2.6
        assert stack.cpi("base") == 0.65
        assert stack.cpi("missing") == 0.0

    def test_sorted_components_group_order(self):
        stack = self.stack()
        assert stack.sorted_components() == ["base", "pom.l3", "data.dram"]
        assert component_sort_key("base") < component_sort_key("tlb.l2tlb")
        assert component_sort_key("pom.l2") < component_sort_key("pom.dram")

    def test_group_totals(self):
        groups = self.stack().group_totals()
        assert groups == {"base": 650.0, "data": 1800.0, "pom": 150.0}

    def test_rows_share_sums_to_one(self):
        rows = self.stack().rows()
        assert sum(share for _, _, _, share in rows) == pytest.approx(1.0)

    def test_waterfall_renders_all_components(self):
        text = self.stack().waterfall()
        for name in ("base", "data.dram", "pom.l3", "total"):
            assert name in text
        assert "csalt-cd" in text
        assert "#" in text

    def test_waterfall_negative_component(self):
        stack = self.stack()
        stack.components["data.mlp_credit"] = -1800.0
        assert "-" in stack.waterfall().splitlines()[-2]

    def test_delta(self):
        a = self.stack()
        b = self.stack()
        b.components = dict(b.components, **{"pom.l3": 50.0})
        rows = dict(
            (name, diff) for name, _, _, diff in a.delta(b)
        )
        assert rows["pom.l3"] == pytest.approx(-0.1)
        assert rows["base"] == 0.0

    def test_round_trip(self):
        stack = self.stack()
        clone = CpiStack.from_dict(stack.to_dict())
        assert clone == stack

    def test_result_round_trip_carries_stack(self):
        result, _ = run_with_accounting(Scheme.POM_TLB, accesses=1500)
        clone = SimulationResult.from_dict(result.to_dict())
        assert clone.cpi_stack == result.cpi_stack

    def test_merge_components(self):
        a = self.stack()
        b = self.stack()
        instructions, components = merge_components([a, b])
        assert instructions == 2000
        assert components["base"] == 1300.0


class TestAccountantMechanics:
    def test_context_suppression(self):
        acct = CycleAccountant()
        acct.begin(0, 0)
        saved = acct.context(None)
        acct.charge_level(".l2", 12)
        acct.restore(saved)
        assert acct.charged == 0.0

    def test_split_vs_flat_context(self):
        acct = CycleAccountant()
        acct.begin(0, 0)
        acct.context("pom", split=True)
        acct.charge_level(".l3", 30)
        acct.context("walk.l2", split=False)
        acct.charge_level(".dram", 200)
        totals = acct.component_totals()
        assert totals == {"pom.l3": 30, "walk.l2": 200}

    def test_charge_to_other_core(self):
        acct = CycleAccountant()
        acct.begin(0, 0)
        acct.charge("base", 1.0)
        acct.charge_to(3, 1, "shootdown", 40)
        assert acct.core_totals() == {0: 1.0, 3: 40}

    def test_reset_clears_everything(self):
        acct = CycleAccountant()
        acct.begin(0, 0)
        acct.charge("base", 1.0)
        acct.mark_unsynced()
        acct.reset()
        assert acct.charged == 0.0
        assert acct.synced
        assert acct.component_totals() == {}
