"""Resource budgets: parsing, the monitor, disk ledger, enforcement paths."""

import errno
import os
import time
from pathlib import Path

import pytest

from repro import budget, faults
from repro.budget import (
    Budget,
    BudgetMonitor,
    BudgetStatus,
    LEVEL_HARD,
    LEVEL_OK,
    LEVEL_SOFT,
    parse_duration,
    parse_size,
)
from repro.checkpoint import CheckpointWriter, read_checkpoint
from repro.cli import main
from repro.core.schemes import Scheme
from repro.errors import (
    EXIT_BUDGET,
    BudgetExceededError,
    ConfigError,
    DiskFullError,
)
from repro.experiments import runner
from repro.experiments.bench import run_bench
from repro.experiments.pool import _responsive_sleep, run_campaign
from repro.experiments.store import ResultStore
from repro.sim.config import small_config
from repro.sim.engine import run_simulation
from repro.telemetry import EventTracer, MetricsRegistry, Telemetry
from repro.workloads.mixes import make_mix

TINY = dict(total_accesses=1_500)


@pytest.fixture(autouse=True)
def clean_state():
    runner.clear_cache()
    runner.set_store(None)
    faults.disarm()
    budget.disarm()
    yield
    runner.clear_cache()
    runner.set_store(None)
    faults.disarm()
    budget.disarm()


def breached_monitor(**limits) -> BudgetMonitor:
    """A monitor whose deadline has already passed (hard breach latched)."""
    monitor = BudgetMonitor(Budget(deadline_seconds=0.001, **limits))
    time.sleep(0.005)
    assert monitor.sample() is not None
    return monitor


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
class TestParsing:
    @pytest.mark.parametrize("text,expected", [
        ("512", 512),
        ("512M", 512 << 20),
        ("512mb", 512 << 20),
        ("2GiB", 2 << 30),
        ("1.5k", 1536),
        (" 4 G ", 4 << 30),
    ])
    def test_sizes(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["", "abc", "12q", "-5M", "1e3"])
    def test_bad_sizes(self, text):
        with pytest.raises(ConfigError):
            parse_size(text)

    @pytest.mark.parametrize("text,expected", [
        ("90", 90.0),
        ("90s", 90.0),
        ("5m", 300.0),
        ("2h", 7200.0),
        ("0.5d", 43200.0),
    ])
    def test_durations(self, text, expected):
        assert parse_duration(text) == expected

    @pytest.mark.parametrize("text", ["", "fast", "10y", "-3s"])
    def test_bad_durations(self, text):
        with pytest.raises(ConfigError):
            parse_duration(text)


# ----------------------------------------------------------------------
# Budget + status
# ----------------------------------------------------------------------
class TestBudget:
    def test_inert_by_default(self):
        assert not Budget().enabled

    def test_any_limit_enables(self):
        assert Budget(deadline_seconds=5).enabled
        assert Budget(disk_quota_bytes=1).enabled

    @pytest.mark.parametrize("field", [
        "deadline_seconds", "max_rss_bytes", "disk_quota_bytes",
        "max_events",
    ])
    def test_rejects_non_positive_limits(self, field):
        with pytest.raises(ConfigError, match="must be positive"):
            Budget(**{field: 0})
        with pytest.raises(ConfigError, match="must be positive"):
            Budget(**{field: -1})

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_rejects_bad_soft_fraction(self, fraction):
        with pytest.raises(ConfigError, match="soft_fraction"):
            Budget(soft_fraction=fraction)

    def test_dict_round_trip(self):
        original = Budget(deadline_seconds=30.0, disk_quota_bytes=1 << 20)
        assert Budget.from_dict(original.to_dict()) == original

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown field"):
            Budget.from_dict({"deadline_secondz": 30})

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ConfigError):
            Budget.from_dict([1, 2])


class TestBudgetStatus:
    def test_levels_via_monitor(self):
        telemetry = Telemetry(tracer=EventTracer())
        monitor = BudgetMonitor(
            Budget(max_events=100), telemetry=telemetry
        )
        for _ in range(50):
            telemetry.emit("e", 0.0)
        (status,) = monitor.statuses()
        assert (status.dimension, status.level) == ("events", LEVEL_OK)
        for _ in range(40):
            telemetry.emit("e", 0.0)
        (status,) = monitor.statuses()
        assert status.level == LEVEL_SOFT  # 90 >= 85% of 100
        for _ in range(20):
            telemetry.emit("e", 0.0)
        (status,) = monitor.statuses()
        assert status.level == LEVEL_HARD

    def test_describe_mentions_dimension_and_fraction(self):
        status = BudgetStatus("disk", used=float(1 << 20),
                              limit=float(2 << 20))
        text = status.describe()
        assert "disk" in text and "50%" in text
        assert BudgetStatus("deadline", 30.0, 60.0).describe().startswith(
            "deadline"
        )


# ----------------------------------------------------------------------
# The monitor: degradation, latching, reporting
# ----------------------------------------------------------------------
class TestMonitor:
    def test_soft_pressure_downsamples_tracer(self):
        telemetry = Telemetry(
            tracer=EventTracer(), metrics=MetricsRegistry()
        )
        monitor = BudgetMonitor(
            Budget(max_events=100), telemetry=telemetry
        )
        for _ in range(90):
            telemetry.emit("e", 0.0)
        assert monitor.sample() is None
        assert monitor.soft_active == frozenset({"events"})
        assert telemetry.tracer.downsample == monitor.downsample_stride
        assert monitor.soft_trips == 1
        assert telemetry.metrics.counter("budget.soft_trips").value == 1

    def test_downsampled_counter_tracks_tracer(self):
        telemetry = Telemetry(
            tracer=EventTracer(), metrics=MetricsRegistry()
        )
        monitor = BudgetMonitor(
            Budget(max_events=1000), telemetry=telemetry,
            downsample_stride=4,
        )
        for _ in range(900):
            telemetry.emit("e", 0.0)
        monitor.sample()            # trips soft, arms downsampling
        for _ in range(40):
            telemetry.emit("e", 0.0)
        monitor.sample()
        counted = telemetry.metrics.counter("telemetry.downsampled").value
        assert counted == telemetry.tracer.downsampled > 0

    def test_pressure_receding_restores_full_sampling(self):
        telemetry = Telemetry(tracer=EventTracer())
        monitor = BudgetMonitor(
            Budget(max_events=100), telemetry=telemetry
        )
        for _ in range(90):
            telemetry.emit("e", 0.0)
        monitor.sample()
        assert telemetry.tracer.downsample > 1
        telemetry.tracer.clear()    # usage drops below the soft line
        monitor.sample()
        assert telemetry.tracer.downsample == 1

    def test_hard_breach_latches(self):
        telemetry = Telemetry(tracer=EventTracer())
        monitor = BudgetMonitor(
            Budget(max_events=10), telemetry=telemetry
        )
        for _ in range(12):
            telemetry.emit("e", 0.0)
        breach = monitor.sample()
        assert breach is not None and breach.level == LEVEL_HARD
        telemetry.tracer.clear()    # usage "recovers" — breach must not
        assert monitor.sample() is breach
        assert monitor.hard_breach is breach

    def test_budget_events_survive_downsampling(self):
        telemetry = Telemetry(tracer=EventTracer())
        monitor = BudgetMonitor(
            Budget(max_events=10), telemetry=telemetry
        )
        for _ in range(12):
            telemetry.emit("e", 0.0)
        monitor.sample()
        names = [event.name for event in telemetry.tracer]
        assert "budget.exceeded" in names

    def test_build_error_carries_exit_code_and_dimension(self):
        monitor = breached_monitor()
        error = monitor.build_error("context here")
        assert error.exit_code == EXIT_BUDGET == 7
        assert error.dimension == "deadline"
        assert "context here" in str(error)
        assert "--resume" in str(error)

    def test_to_dict_is_json_shaped(self):
        import json

        monitor = breached_monitor()
        monitor.beat(1234)
        document = json.loads(json.dumps(monitor.to_dict()))
        assert document["hard_breach"]["dimension"] == "deadline"
        assert document["heartbeat"] == 1234

    def test_deadline_remaining(self):
        monitor = BudgetMonitor(Budget(deadline_seconds=1000.0))
        remaining = monitor.deadline_remaining()
        assert 0 < remaining <= 1000.0
        assert BudgetMonitor(Budget(max_rss_bytes=1)).deadline_remaining() \
            is None

    def test_arm_disarm(self):
        monitor = BudgetMonitor(Budget(deadline_seconds=1.0))
        assert budget.ACTIVE is None
        with budget.armed(monitor):
            assert budget.ACTIVE is monitor
        assert budget.ACTIVE is None


# ----------------------------------------------------------------------
# Disk ledger + quota
# ----------------------------------------------------------------------
class TestDiskLedger:
    def test_tracking_charges_existing_contents(self, tmp_path):
        (tmp_path / "existing").write_bytes(b"x" * 1000)
        monitor = BudgetMonitor(Budget(disk_quota_bytes=10_000))
        monitor.track_directory(tmp_path)
        assert monitor.disk_used == 1000

    def test_tracking_is_idempotent(self, tmp_path):
        (tmp_path / "existing").write_bytes(b"x" * 1000)
        monitor = BudgetMonitor(Budget(disk_quota_bytes=10_000))
        monitor.track_directory(tmp_path)
        monitor.track_directory(tmp_path)
        assert monitor.disk_used == 1000

    def test_charges_accumulate_and_credit(self):
        monitor = BudgetMonitor(Budget(disk_quota_bytes=10_000))
        monitor.charge_disk(600)
        monitor.charge_disk(-200)
        assert monitor.disk_used == 400

    def test_check_disk_refuses_overshoot(self):
        monitor = BudgetMonitor(Budget(disk_quota_bytes=1000))
        monitor.charge_disk(900)
        monitor.check_disk(100, "small write")    # exactly at quota: ok
        with pytest.raises(BudgetExceededError) as exc_info:
            monitor.check_disk(101, "big write")
        assert exc_info.value.dimension == "disk"
        assert "--resume" in str(exc_info.value)

    def test_check_disk_noop_without_quota(self):
        BudgetMonitor(Budget(deadline_seconds=9)).check_disk(1 << 40, "x")

    def test_rescan_reconciles_with_reality(self, tmp_path):
        monitor = BudgetMonitor(Budget(disk_quota_bytes=10_000))
        monitor.track_directory(tmp_path)
        monitor.charge_disk(5000)                 # ledger drifts
        (tmp_path / "real").write_bytes(b"y" * 300)
        monitor._rescan_disk()
        assert monitor.disk_used == 300

    def test_store_save_prechecks_quota(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        result = runner.run_point("gups", Scheme.POM_TLB, **TINY)
        monitor = BudgetMonitor(Budget(disk_quota_bytes=64))
        monitor.track_directory(store.root)
        with budget.armed(monitor):
            with pytest.raises(BudgetExceededError) as exc_info:
                store.save(
                    runner.point_signature("gups", Scheme.POM_TLB, **TINY),
                    result,
                )
        assert exc_info.value.dimension == "disk"
        assert len(store) == 0                    # nothing landed

    def test_store_save_charges_ledger(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        result = runner.run_point("gups", Scheme.POM_TLB, **TINY)
        monitor = BudgetMonitor(Budget(disk_quota_bytes=1 << 30))
        monitor.track_directory(store.root)
        with budget.armed(monitor):
            store.save(
                runner.point_signature("gups", Scheme.POM_TLB, **TINY),
                result,
            )
        assert monitor.disk_used > 0

    def test_checkpoint_prune_credits_ledger(self, tmp_path):
        monitor = BudgetMonitor(Budget(disk_quota_bytes=1 << 30))
        monitor.track_directory(tmp_path)
        with budget.armed(monitor):
            writer = CheckpointWriter(tmp_path, keep=1)
            writer.write(1000, {"executed": 1000, "payload": "a" * 100})
            after_first = monitor.disk_used
            writer.write(2000, {"executed": 2000, "payload": "b" * 100})
        # Keep=1 pruned the first snapshot: its bytes must be credited
        # back, leaving roughly one snapshot's worth on the ledger.
        assert monitor.disk_used < after_first * 1.5


# ----------------------------------------------------------------------
# ENOSPC translation (satellite: actionable taxonomy errors)
# ----------------------------------------------------------------------
class TestDiskFullTranslation:
    def test_store_enospc_fault_point(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        result = runner.run_point("gups", Scheme.POM_TLB, **TINY)
        plan = faults.FaultPlan(
            faults=[faults.FaultSpec(point="store.enospc")],
            seed=3, name="test",
        )
        with faults.armed(plan):
            with pytest.raises(DiskFullError) as exc_info:
                store.save(
                    runner.point_signature("gups", Scheme.POM_TLB, **TINY),
                    result,
                )
        error = exc_info.value
        assert error.exit_code == EXIT_BUDGET
        assert error.dimension == "disk"
        assert "--resume" in str(error)
        assert len(store) == 0

    def test_store_real_enospc_translated(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        result = runner.run_point("gups", Scheme.POM_TLB, **TINY)

        def full_disk(*args, **kwargs):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(os, "replace", full_disk)
        with pytest.raises(DiskFullError, match="no space left"):
            store.save(
                runner.point_signature("gups", Scheme.POM_TLB, **TINY),
                result,
            )

    def test_store_other_oserror_not_swallowed(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        result = runner.run_point("gups", Scheme.POM_TLB, **TINY)

        def perm_denied(*args, **kwargs):
            raise OSError(errno.EACCES, "Permission denied")

        monkeypatch.setattr(os, "replace", perm_denied)
        with pytest.raises(OSError) as exc_info:
            store.save(
                runner.point_signature("gups", Scheme.POM_TLB, **TINY),
                result,
            )
        assert not isinstance(exc_info.value, DiskFullError)

    def test_checkpoint_enospc_fault_point(self, tmp_path):
        writer = CheckpointWriter(tmp_path, keep=3)
        first = writer.write(1000, {"executed": 1000})
        plan = faults.FaultPlan(
            faults=[faults.FaultSpec(point="checkpoint.enospc")],
            seed=3, name="test",
        )
        with faults.armed(plan):
            with pytest.raises(DiskFullError):
                writer.write(2000, {"executed": 2000})
        # The previous snapshot must have survived the failed write.
        document, header = read_checkpoint(first)
        assert document["executed"] == 1000
        assert not list(Path(tmp_path).glob("*.tmp"))


# ----------------------------------------------------------------------
# Engine: checkpoint-then-stop, bit-identical resume
# ----------------------------------------------------------------------
class TestEngineEnforcement:
    def _run(self, **kwargs):
        return run_simulation(
            small_config(), make_mix("gups", scale=0.25),
            total_accesses=30_000, seed=3, **kwargs
        )

    def test_deadline_stop_is_resumable_and_bit_identical(self, tmp_path):
        baseline = self._run()
        with pytest.raises(BudgetExceededError) as exc_info:
            self._run(
                checkpoint_every=2_000, checkpoint_dir=tmp_path,
                budget=Budget(deadline_seconds=0.05),
            )
        error = exc_info.value
        assert error.exit_code == EXIT_BUDGET
        assert error.snapshot_path is not None
        document, header = read_checkpoint(error.snapshot_path)
        assert header.get("budget_breach") is True
        resumed = self._run(restore=error.snapshot_path)

        def canonical(result):
            record = result.to_dict()
            record["extra"] = {
                key: value for key, value in record["extra"].items()
                if not key.startswith("host_")
            }
            return record

        assert canonical(baseline) == canonical(resumed)

    def test_breach_state_reported_in_extra(self, tmp_path):
        with pytest.raises(BudgetExceededError):
            self._run(
                checkpoint_every=2_000, checkpoint_dir=tmp_path,
                budget=Budget(deadline_seconds=0.05),
            )
        # An unbreached budgeted run reports its budget state.
        result = self._run(budget=Budget(deadline_seconds=3600))
        assert result.extra["host_budget"]["budget"]["deadline_seconds"] \
            == 3600
        assert result.extra["host_budget"]["hard_breach"] is None

    def test_unbudgeted_run_has_no_monitor_state(self):
        result = self._run()
        assert "host_budget" not in result.extra

    def test_monitor_disarmed_after_breach(self, tmp_path):
        with pytest.raises(BudgetExceededError):
            self._run(
                checkpoint_every=2_000, checkpoint_dir=tmp_path,
                budget=Budget(deadline_seconds=0.05),
            )
        assert budget.ACTIVE is None


# ----------------------------------------------------------------------
# Pool: drain, skip accounting, responsive sleeps
# ----------------------------------------------------------------------
class TestPoolEnforcement:
    def grid(self):
        return [
            runner.point_signature(mix, Scheme.POM_TLB, **TINY)
            for mix in ("gups", "canneal")
        ]

    def test_breached_campaign_skips_and_raises(self):
        monitor = breached_monitor()
        with pytest.raises(BudgetExceededError) as exc_info:
            run_campaign(self.grid(), monitor=monitor)
        error = exc_info.value
        summary = error.summary
        assert summary.simulated == 0
        assert summary.skipped == 2
        assert "skipped (budget)" in summary.format()

    def test_skipped_points_rerun_on_resume(self):
        monitor = breached_monitor()
        with pytest.raises(BudgetExceededError):
            run_campaign(self.grid(), monitor=monitor)
        # Poisoning is in-memory bookkeeping for this campaign only: a
        # fresh (resumed) campaign without a budget re-runs the points.
        runner.clear_cache()
        summary = run_campaign(self.grid())
        assert summary.simulated == 2
        assert summary.ok

    def test_parallel_breach_drains_with_exit_semantics(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        monitor = breached_monitor()
        with pytest.raises(BudgetExceededError) as exc_info:
            run_campaign(
                self.grid(), jobs=2, store=store, monitor=monitor
            )
        assert exc_info.value.summary.skipped == 2

    def test_disk_full_aborts_inline_campaign_resumably(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        plan = faults.FaultPlan(
            faults=[faults.FaultSpec(point="store.enospc")],
            seed=3, name="test",
        )
        with faults.armed(plan):
            with pytest.raises(DiskFullError) as exc_info:
                run_campaign(self.grid(), store=store)
        # One identical disk-full per point would be noise: the campaign
        # stops at the first, poisons the rest as skipped, and resumes.
        assert exc_info.value.summary.skipped >= 1
        runner.clear_cache()
        summary = run_campaign(self.grid(), store=store, resume=True)
        assert summary.ok and len(store) == 2

    def test_disk_full_aborts_parallel_campaign_resumably(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        plan = faults.FaultPlan(
            faults=[faults.FaultSpec(point="store.enospc")],
            seed=3, name="test",
        )
        with faults.armed(plan):
            with pytest.raises(DiskFullError):
                run_campaign(self.grid(), jobs=2, store=store)
        faults.disarm()
        runner.clear_cache()
        summary = run_campaign(self.grid(), jobs=2, store=store, resume=True)
        assert summary.ok and len(store) == 2

    def test_responsive_sleep_returns_on_breach(self):
        monitor = breached_monitor()
        started = time.monotonic()
        _responsive_sleep(5.0, monitor=monitor)
        assert time.monotonic() - started < 1.0

    def test_responsive_sleep_sleeps_unbudgeted(self):
        started = time.monotonic()
        _responsive_sleep(0.08)
        assert time.monotonic() - started >= 0.08


# ----------------------------------------------------------------------
# Bench: deadline truncation
# ----------------------------------------------------------------------
class TestBenchDeadline:
    def test_truncated_document_attached_to_error(self):
        with pytest.raises(BudgetExceededError) as exc_info:
            # The deadline passes during the first matrix point, so the
            # check before the next one stops the run.
            run_bench(quick=True, accesses=200, deadline=0.001)
        document = exc_info.value.document
        assert document["truncated"]["reason"] == "deadline"
        assert document["truncated"]["points_run"] < \
            document["truncated"]["points_total"]
        assert len(document["points"]) == document["truncated"]["points_run"]

    def test_no_deadline_runs_whole_matrix(self):
        document = run_bench(quick=True, accesses=200)
        assert "truncated" not in document
        assert len(document["points"]) == 3


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_run_exits_7_on_deadline(self, tmp_path, capsys):
        code = main([
            "run", "--mix", "gups", "--scheme", "csalt-cd",
            "--accesses", "5000000", "--deadline", "0.2s",
            "--checkpoint-every", "5000",
            "--checkpoint-dir", str(tmp_path),
        ])
        assert code == 7
        assert list(tmp_path.glob("*.ckpt"))
        assert "BudgetExceededError" in capsys.readouterr().err

    def test_bad_deadline_is_a_usage_error(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["run", "--mix", "gups", "--deadline", "banana"])
        assert exc_info.value.code == 2

    def test_bad_size_is_a_usage_error(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["run", "--mix", "gups", "--max-rss", "-4G"])
        assert exc_info.value.code == 2

    def test_report_store_quota_requires_store(self, capsys):
        code = main(["report", "--store-quota", "1G"])
        assert code == 2
        assert "--store" in capsys.readouterr().err

    def test_report_exits_7_and_writes_partial(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_TOTAL_ACCESSES", "1500")
        out = tmp_path / "report.md"
        code = main([
            "report", "--only", "figure8", "--jobs", "2",
            "--store", str(tmp_path / "store"),
            "--deadline", "0.001s", "--out", str(out),
        ])
        assert code == 7
        text = out.read_text()
        assert "PARTIAL" in text
        assert "budget exceeded" in text

    def test_doctor_flags_over_quota_store(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "store")
        result = runner.run_point("gups", Scheme.POM_TLB, **TINY)
        store.save(
            runner.point_signature("gups", Scheme.POM_TLB, **TINY), result
        )
        assert main([
            "doctor", "--store", str(store.root), "--store-quota", "1G",
        ]) == 0
        code = main([
            "doctor", "--store", str(store.root), "--store-quota", "1K",
        ])
        assert code == 5
        assert "quota" in capsys.readouterr().out.lower()
